(* Trail and unification tests. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
open Test_util

let unify ?occurs_check trail a b =
  let steps = ref 0 in
  Unify.unify ?occurs_check ~trail ~steps a b

let test_trail_undo () =
  let trail = Trail.create () in
  let x = Term.fresh_var () and y = Term.fresh_var () in
  let mark0 = Trail.mark trail in
  assert (unify trail (Term.Var x) (Term.int 1));
  let mark1 = Trail.mark trail in
  assert (unify trail (Term.Var y) (Term.int 2));
  Alcotest.(check int) "two entries" 2 (Trail.size trail);
  let undone = Trail.undo_to trail mark1 in
  Alcotest.(check int) "one undone" 1 undone;
  Alcotest.(check bool) "y unbound" true (y.Term.binding = None);
  Alcotest.(check bool) "x still bound" true (x.Term.binding <> None);
  ignore (Trail.undo_to trail mark0);
  Alcotest.(check bool) "x unbound" true (x.Term.binding = None)

let test_trail_growth () =
  let trail = Trail.create () in
  let vars = List.init 500 (fun _ -> Term.fresh_var ()) in
  List.iter
    (fun v ->
      v.Term.binding <- Some (Term.int 0);
      Trail.push trail v)
    vars;
  Alcotest.(check int) "all recorded" 500 (Trail.size trail);
  ignore (Trail.undo_to trail 0);
  Alcotest.(check bool) "all unbound" true
    (List.for_all (fun v -> v.Term.binding = None) vars)

let test_trail_segment () =
  let trail = Trail.create () in
  let vars = Array.init 6 (fun _ -> Term.fresh_var ()) in
  Array.iter
    (fun v ->
      v.Term.binding <- Some (Term.int 1);
      Trail.push trail v)
    vars;
  let seg = Trail.segment trail ~lo:2 ~hi:4 in
  let undone = Trail.undo_segment seg in
  Alcotest.(check int) "segment size" 2 undone;
  Alcotest.(check bool) "middle undone" true
    (vars.(2).Term.binding = None && vars.(3).Term.binding = None);
  Alcotest.(check bool) "edges intact" true
    (vars.(0).Term.binding <> None && vars.(5).Term.binding <> None)

let test_unify_basic () =
  let trail = Trail.create () in
  let t1 = term "f(X, g(Y), 3)" and t2 = term "f(1, g(2), Z)" in
  Alcotest.(check bool) "unifies" true (unify trail t1 t2);
  check_term "t1 instantiated" "f(1,g(2),3)" (Term.copy_resolved t1);
  check_term "t2 instantiated" "f(1,g(2),3)" (Term.copy_resolved t2)

let test_unify_failure_mismatch () =
  let trail = Trail.create () in
  Alcotest.(check bool) "functor clash" false (unify trail (term "f(1)") (term "g(1)"));
  Alcotest.(check bool) "arity clash" false (unify trail (term "f(1)") (term "f(1,2)"));
  Alcotest.(check bool) "atom vs int" false (unify trail (term "a") (term "1"))

let test_unify_or_undo () =
  let trail = Trail.create () in
  let steps = ref 0 in
  let x = term "X" in
  let a = Term.app "f" [ x; Term.int 1 ] in
  let b = Term.app "f" [ Term.int 2; Term.int 9 ] in
  Alcotest.(check bool) "fails" false
    (Unify.unify_or_undo ~trail ~steps a b);
  Alcotest.(check int) "trail restored" 0 (Trail.size trail);
  Alcotest.(check bool) "x unbound again" true
    (match Term.deref x with Term.Var _ -> true | _ -> false)

let test_occurs_check () =
  let trail = Trail.create () in
  let x = Term.var () in
  let fx = Term.app "f" [ x ] in
  Alcotest.(check bool) "without occurs check binds" true (unify trail x fx);
  ignore (Trail.undo_to trail 0);
  Alcotest.(check bool) "with occurs check fails" false
    (unify ~occurs_check:true trail x fx)

let test_matches () =
  Alcotest.(check bool) "satisfiable" true
    (Unify.matches (term "f(X, 1)") (term "f(2, Y)"));
  Alcotest.(check bool) "unsatisfiable" false
    (Unify.matches (term "f(1)") (term "f(2)"));
  (* no residue: both terms stay open *)
  let a = term "g(X)" in
  ignore (Unify.matches a (term "g(5)"));
  Alcotest.(check bool) "no bindings left" false (Term.is_ground a)

(* properties *)

let with_trail f =
  let trail = Trail.create () in
  f trail

let prop_unify_makes_equal =
  (* occurs check on: without it a term with a repeated variable (e.g.
     f(X, f(X)) against f(Y, Y)) can unify into a rational tree, and
     [Term.equal] diverges on cyclic bindings — the engines never traverse
     such terms, but this property would *)
  qcheck "successful unify makes terms equal"
    QCheck2.Gen.(pair open_term_gen open_term_gen)
    (fun (a, b) ->
      with_trail (fun trail ->
          if unify ~occurs_check:true trail a b then Term.equal a b else true))

let prop_undo_restores =
  qcheck "undo restores open variables"
    QCheck2.Gen.(pair open_term_gen open_term_gen)
    (fun (a, b) ->
      with_trail (fun trail ->
          let before = Ace_term.Pp.to_string a in
          let mark = Trail.mark trail in
          ignore (unify trail a b);
          ignore (Trail.undo_to trail mark);
          (* variable identities persist, so printing is stable *)
          String.equal before (Ace_term.Pp.to_string a)))

let prop_unify_symmetric =
  qcheck "unifiability is symmetric"
    QCheck2.Gen.(pair ground_term_gen ground_term_gen)
    (fun (a, b) ->
      with_trail (fun t1 -> unify t1 a b)
      = with_trail (fun t2 -> unify t2 b a))

let prop_ground_unify_is_equal =
  qcheck "ground unification is equality"
    QCheck2.Gen.(pair ground_term_gen ground_term_gen)
    (fun (a, b) -> with_trail (fun trail -> unify trail a b) = Term.equal a b)

let suite =
  [ Alcotest.test_case "trail undo" `Quick test_trail_undo;
    Alcotest.test_case "trail growth" `Quick test_trail_growth;
    Alcotest.test_case "trail segment" `Quick test_trail_segment;
    Alcotest.test_case "unify basic" `Quick test_unify_basic;
    Alcotest.test_case "unify mismatches" `Quick test_unify_failure_mismatch;
    Alcotest.test_case "unify_or_undo" `Quick test_unify_or_undo;
    Alcotest.test_case "occurs check" `Quick test_occurs_check;
    Alcotest.test_case "matches" `Quick test_matches;
    prop_unify_makes_equal;
    prop_undo_restores;
    prop_unify_symmetric;
    prop_ground_unify_is_equal ]
