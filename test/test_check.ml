(* The correctness-tooling subsystem (lib/check): generator determinism
   and validity, the differential oracle on a smoke budget, the mutation
   smoke test (an injected semantics bug must be caught and shrunk to a
   replayable minimal program), and deterministic chaos schedules on all
   engines. *)

module Gen_prog = Ace_check.Gen_prog
module Oracle = Ace_check.Oracle
module Fuzz = Ace_check.Fuzz
module Chaos = Ace_sched.Chaos
module Config = Ace_machine.Config
module Engine = Ace_core.Engine

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  for seed = 0 to 24 do
    let a = Gen_prog.generate ~seed and b = Gen_prog.generate ~seed in
    Alcotest.(check string)
      (Printf.sprintf "program text stable for seed %d" seed)
      (Gen_prog.program_text a) (Gen_prog.program_text b);
    Alcotest.(check string)
      (Printf.sprintf "query text stable for seed %d" seed)
      (Gen_prog.query_text a) (Gen_prog.query_text b)
  done

(* Every generated program consults and its query parses: the generator
   stays inside the engines' common input language. *)
let test_gen_valid () =
  for seed = 0 to 199 do
    let c = Gen_prog.generate ~seed in
    (try ignore (Ace_lang.Program.consult_string (Gen_prog.program_text c))
     with Ace_lang.Program.Error m ->
       Alcotest.failf "seed %d does not consult: %s" seed m);
    try ignore (Ace_lang.Program.parse_query (Gen_prog.query_text c))
    with Ace_lang.Program.Error m ->
      Alcotest.failf "seed %d query does not parse: %s" seed m
  done

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                 *)
(* ------------------------------------------------------------------ *)

(* CI smoke budget; the 500-case budget runs via `ace_run --check` and the
   nightly workflow runs far more. *)
let test_oracle_smoke () =
  let r = Fuzz.run ~count:40 ~seed:7_000 ~schedules:1 () in
  List.iter
    (fun f -> Format.eprintf "%a" Fuzz.pp_failure f)
    r.Fuzz.r_failures;
  Alcotest.(check int) "no cross-engine discrepancies" 0
    (List.length r.Fuzz.r_failures);
  Alcotest.(check bool) "most cases comparable" true (r.Fuzz.r_agreed >= 30)

(* An injected semantics bug (one engine silently loses a clause) must be
   caught, shrunk to a small program, and replay from the printed seed. *)
let test_mutation_caught () =
  let mutation = { Oracle.m_engine = Engine.Or_parallel; m_drop = 0 } in
  let r = Fuzz.run ~count:6 ~seed:0 ~schedules:1 ~mutation () in
  Alcotest.(check bool) "injected bug caught" true (r.Fuzz.r_failures <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d shrunk to <= 5 clauses (%d)" f.Fuzz.f_seed
           (Gen_prog.clause_count f.Fuzz.f_shrunk))
        true
        (Gen_prog.clause_count f.Fuzz.f_shrunk <= 5);
      Alcotest.(check bool) "shrunk case still fails" true
        (Oracle.fails ~schedules:1 ~mutation f.Fuzz.f_shrunk);
      (* the printed replay line is sufficient: regenerate from the seed *)
      Alcotest.(check bool) "failure replays from its seed" true
        (Oracle.fails ~schedules:1 ~mutation
           (Gen_prog.generate ~seed:f.Fuzz.f_seed)))
    r.Fuzz.r_failures

(* ------------------------------------------------------------------ *)
(* Chaos: spec round-trip and decision-stream determinism              *)
(* ------------------------------------------------------------------ *)

let test_chaos_spec_roundtrip () =
  let c = Chaos.make ~seed:42 () in
  (match Chaos.of_spec (Chaos.to_spec c) with
  | Error m -> Alcotest.failf "spec does not round-trip: %s" m
  | Ok c' ->
    Alcotest.(check string) "spec round-trips" (Chaos.to_spec c)
      (Chaos.to_spec c');
    let drain a =
      List.init 200 (fun _ ->
          (Chaos.steal_blocked a, Chaos.publish_delayed a, Chaos.jitter a))
    in
    Alcotest.(check bool) "same seed, same decision stream" true
      (drain (Chaos.agent c 3) = drain (Chaos.agent c' 3));
    Alcotest.(check bool) "agents draw distinct streams" true
      (drain (Chaos.agent c 0) <> drain (Chaos.agent c 1)));
  match Chaos.of_spec "off" with
  | Ok c -> Alcotest.(check bool) "off parses to disabled" false (Chaos.enabled c)
  | Error m -> Alcotest.failf "'off' must parse: %s" m

(* ------------------------------------------------------------------ *)
(* Schedule exploration: answers are invariant, replay is exact        *)
(* ------------------------------------------------------------------ *)

let colors =
  "color(r). color(g). color(b).\n\
   pair(X, Y) :- color(X), color(Y).\n"

let canonical r = Ace_check.Canon.strings r.Engine.solutions
let sorted r = Ace_check.Canon.multiset r.Engine.solutions

let seq_sorted program query =
  sorted (Engine.solve_program Engine.Sequential Config.default ~program ~query)

(* Simulated or-engine: one chaos seed = one exact interleaving (same
   discovery order on replay); every seed computes the same multiset. *)
let test_or_schedule_replay () =
  let cfg = Config.all_optimizations ~agents:4 () in
  let run chaos =
    Engine.solve_program ~chaos Engine.Or_parallel cfg ~program:colors
      ~query:"pair(X, Y)"
  in
  let reference = seq_sorted colors "pair(X, Y)" in
  for seed = 1 to 5 do
    let chaos = Chaos.make ~seed () in
    Alcotest.(check (list string))
      (Printf.sprintf "chaos seed %d replays the exact discovery order" seed)
      (canonical (run chaos)) (canonical (run chaos));
    Alcotest.(check (list string))
      (Printf.sprintf "chaos seed %d preserves the answer multiset" seed)
      reference
      (sorted (run chaos))
  done

let independent_and =
  "d(1). d(2). d(3).\nm(X, Y) :- d(X) & d(Y).\n"

let test_and_schedule_invariance () =
  let cfg = Config.all_optimizations ~agents:4 () in
  let reference = seq_sorted independent_and "m(X, Y)" in
  for seed = 1 to 5 do
    let chaos = Chaos.make ~seed () in
    Alcotest.(check (list string))
      (Printf.sprintf "and-engine multiset invariant under chaos seed %d" seed)
      reference
      (sorted
         (Engine.solve_program ~chaos Engine.And_parallel cfg
            ~program:independent_and ~query:"m(X, Y)"))
  done

(* The domains engine under injected steal failures, delayed publishes and
   forced preemption: answers must not change. *)
let test_par_chaos_invariance () =
  let cfg = Config.all_optimizations ~agents:4 () in
  let reference = seq_sorted colors "pair(X, Y)" in
  for seed = 1 to 3 do
    let chaos = Chaos.make ~seed () in
    Alcotest.(check (list string))
      (Printf.sprintf "par-or multiset invariant under chaos seed %d" seed)
      reference
      (sorted
         (Engine.solve_program ~chaos Engine.Par_or cfg ~program:colors
            ~query:"pair(X, Y)"))
  done

let test_seq_jitter_invariance () =
  let reference = seq_sorted colors "pair(X, Y)" in
  let chaos = Chaos.make ~seed:9 () in
  Alcotest.(check (list string)) "sequential answers ignore jitter" reference
    (sorted
       (Engine.solve_program ~chaos Engine.Sequential Config.default
          ~program:colors ~query:"pair(X, Y)"))

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generated programs valid" `Quick test_gen_valid;
    Alcotest.test_case "oracle smoke budget" `Slow test_oracle_smoke;
    Alcotest.test_case "mutation caught and shrunk" `Slow test_mutation_caught;
    Alcotest.test_case "chaos spec round-trip" `Quick test_chaos_spec_roundtrip;
    Alcotest.test_case "or-engine schedule replay" `Quick
      test_or_schedule_replay;
    Alcotest.test_case "and-engine schedule invariance" `Quick
      test_and_schedule_invariance;
    Alcotest.test_case "par-or chaos invariance" `Quick
      test_par_chaos_invariance;
    Alcotest.test_case "seq jitter invariance" `Quick
      test_seq_jitter_invariance;
  ]
