(* Builtin error paths on all four engines: type errors, arithmetic
   domain errors and unbound-variable arithmetic must surface as the SAME
   error everywhere — a parallel engine must not turn an error into a
   silent failure (or vice versa).

   Messages may embed fresh-variable ids (_G17), which legitimately differ
   between engines; they are normalized away before comparison. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Oracle = Ace_check.Oracle

let program = "q(0).\n"

(* _G<digits> -> _G: variable ids are renaming-dependent. *)
let normalize msg =
  let b = Buffer.create (String.length msg) in
  let n = String.length msg in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && msg.[!i] = '_' && msg.[!i + 1] = 'G' then begin
      Buffer.add_string b "_G";
      i := !i + 2;
      while !i < n && msg.[!i] >= '0' && msg.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char b msg.[!i];
      incr i
    end
  done;
  Buffer.contents b

let engines =
  [
    ("seq", Engine.Sequential, Config.default);
    ("and", Engine.And_parallel, Config.all_optimizations ~agents:2 ());
    ("or", Engine.Or_parallel, Config.all_optimizations ~agents:2 ());
    ("par", Engine.Par_or, Config.all_optimizations ~agents:2 ());
    (* the domains engine again with and-parallel execution on: errors
       raised inside parcall slots must cross the frame and the domain
       boundary unchanged *)
    ("par+and", Engine.Par_or,
     { (Config.all_optimizations ~agents:2 ()) with Config.par_and = true });
  ]

(* Runs [query] on every engine; asserts each raises, with identical
   normalized messages, and that the message mentions [expect]. *)
let check_error ~expect query () =
  let outcomes =
    List.map
      (fun (name, kind, config) ->
        (name, Oracle.run_engine kind config ~program ~query))
      engines
  in
  let reference =
    match List.assoc "seq" outcomes with
    | Oracle.Error m -> normalize m
    | Oracle.Solutions ss ->
      Alcotest.failf "seq did not error on %s (%d solutions)" query
        (List.length ss)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "seq message %S mentions %S" reference expect)
    true (contains reference expect);
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Oracle.Error m ->
        Alcotest.(check string)
          (Printf.sprintf "%s error matches seq on %s" name query)
          reference (normalize m)
      | Oracle.Solutions ss ->
        Alcotest.failf "%s did not error on %s (%d solutions)" name query
          (List.length ss))
    outcomes

let suite =
  [
    Alcotest.test_case "division by zero" `Quick
      (check_error ~expect:"division by zero" "X is 1 // 0");
    Alcotest.test_case "unbound variable in arithmetic" `Quick
      (check_error ~expect:"unbound variable" "X is Y + 1");
    Alcotest.test_case "unknown arithmetic constant" `Quick
      (check_error ~expect:"unknown constant" "X is foo + 1");
    Alcotest.test_case "non-integral division" `Quick
      (check_error ~expect:"non-integral" "X is 7 / 2");
    Alcotest.test_case "undefined predicate" `Quick
      (check_error ~expect:"undefined" "no_such_pred(1)");
    Alcotest.test_case "functor/3 insufficiently instantiated" `Quick
      (check_error ~expect:"insufficiently instantiated" "functor(F, N, A)");
    Alcotest.test_case "arg/3 insufficiently instantiated" `Quick
      (check_error ~expect:"insufficiently instantiated" "arg(N, T, A)");
  ]
