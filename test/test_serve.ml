(* lib/serve: protocol framing, sessions, and the socket server. *)

module Cancel = Ace_core.Cancel
module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Json = Ace_obs.Json
module Protocol = Ace_server.Protocol
module Server = Ace_server.Server
module Session = Ace_server.Session

let base_program =
  {|
edge(a, b).
edge(b, c).
edge(a, c).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
gen(z).
gen(s(N)) :- gen(N).
spin :- gen(N), never(N).
never(none).
|}

let prepared = lazy (Engine.prepare_string base_program)

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected session error: %s" m

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  (match
     Protocol.parse_request
       {|{"op":"query","id":3,"goal":"p(X)","engine":"par","limit":5}|}
   with
  | Ok (Protocol.Query { id; goal; engine; limit; _ }) ->
    Alcotest.(check int) "id" 3 id;
    Alcotest.(check string) "goal" "p(X)" goal;
    Alcotest.(check bool) "engine" true (engine = Some Engine.Par_or);
    Alcotest.(check (option int)) "limit" (Some 5) limit
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error m -> Alcotest.fail m);
  (match Protocol.parse_request {|{"op":"assert","clause":"p(9)"}|} with
  | Ok (Protocol.Assert { clause; front }) ->
    Alcotest.(check string) "clause" "p(9)" clause;
    Alcotest.(check bool) "back by default" false front
  | _ -> Alcotest.fail "assert did not parse");
  (match Protocol.parse_request {|{"op":"cancel","id":7}|} with
  | Ok (Protocol.Cancel { id }) -> Alcotest.(check int) "cancel id" 7 id
  | _ -> Alcotest.fail "cancel did not parse");
  Alcotest.(check bool) "ping" true (Protocol.parse_request {|{"op":"ping"}|} = Ok Protocol.Ping);
  (match Protocol.parse_request {|{"op":"query","goal":"p(X)"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "query without id must be rejected");
  match Protocol.parse_request "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad json must be rejected"

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let test_session_query () =
  let s = Session.create (Lazy.force prepared) in
  let a = ok (Session.query s "path(a, X)") in
  Alcotest.(check (list string)) "solutions"
    [ "path(a,b)"; "path(a,c)"; "path(a,c)" ]
    (List.sort String.compare a.Session.solutions);
  Alcotest.(check bool) "not cancelled" true (a.Session.cancelled = None);
  let a = ok (Session.query ~limit:1 s "path(a, X)") in
  Alcotest.(check int) "limit honoured" 1 (List.length a.Session.solutions)

let test_session_overlay_ops () =
  let p = Lazy.force prepared in
  let s1 = Session.create p and s2 = Session.create p in
  ok (Session.assert_clause s1 "edge(c, d)");
  let a = ok (Session.query s1 "path(c, X)") in
  Alcotest.(check (list string)) "asserted clause reachable" [ "path(c,d)" ]
    a.Session.solutions;
  let a = ok (Session.query s2 "path(c, X)") in
  Alcotest.(check int) "other session isolated" 0
    (List.length a.Session.solutions);
  Alcotest.(check bool) "retract removes it" true
    (ok (Session.retract_clause s1 "edge(c, d)"));
  let a = ok (Session.query s1 "path(c, X)") in
  Alcotest.(check int) "retracted" 0 (List.length a.Session.solutions)

let test_session_errors () =
  let s = Session.create (Lazy.force prepared) in
  (match Session.query s "nosuch(X)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown predicate must answer an error");
  (match Session.query s "p(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must answer an error");
  match Session.assert_clause s "p(X) :-" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed clause must answer an error"

let test_session_deadline () =
  let s = Session.create (Lazy.force prepared) in
  let a = ok (Session.query ~deadline_ms:50 s "spin") in
  Alcotest.(check bool) "cancelled on deadline" true
    (a.Session.cancelled = Some Cancel.Deadline);
  Alcotest.(check int) "no solutions" 0 (List.length a.Session.solutions)

let test_session_cancel_inflight () =
  let s = Session.create (Lazy.force prepared) in
  let result = ref (Error "not run") in
  let th = Thread.create (fun () -> result := Session.query ~id:1 s "spin") () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Session.inflight s = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check int) "one in flight" 1 (Session.inflight s);
  Alcotest.(check bool) "cancel hits" true (Session.cancel s 1);
  Thread.join th;
  (match !result with
  | Ok a ->
    Alcotest.(check bool) "requested" true
      (a.Session.cancelled = Some Cancel.Requested)
  | Error m -> Alcotest.failf "cancelled query errored: %s" m);
  Alcotest.(check int) "unregistered" 0 (Session.inflight s);
  Alcotest.(check bool) "cancel misses now" false (Session.cancel s 1)

(* ------------------------------------------------------------------ *)
(* The socket server                                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip ic oc req =
  output_string oc (Json.to_string req);
  output_char oc '\n';
  flush oc;
  match Json.parse (input_line ic) with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad response json: %s" m

let num name j =
  match Json.member name j with
  | Some (Json.Num n) -> int_of_float n
  | _ -> Alcotest.failf "response lacks %s: %s" name (Json.to_string j)

let test_server_roundtrip () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ace_test_serve_%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.create ~workers:2 ~listen:(Unix.ADDR_UNIX sock)
      (Lazy.force prepared)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let j = roundtrip ic oc (Json.Obj [ ("op", Json.Str "ping") ]) in
  Alcotest.(check bool) "pong" true (Json.member "pong" j = Some (Json.Bool true));
  let j =
    roundtrip ic oc
      (Json.Obj
         [ ("op", Json.Str "query"); ("id", Json.int 1);
           ("goal", Json.Str "path(a, X)") ])
  in
  Alcotest.(check int) "three paths" 3 (num "count" j);
  ignore
    (roundtrip ic oc
       (Json.Obj [ ("op", Json.Str "assert"); ("clause", Json.Str "edge(c, d)") ]));
  let j =
    roundtrip ic oc
      (Json.Obj
         [ ("op", Json.Str "query"); ("id", Json.int 2);
           ("goal", Json.Str "path(c, X)") ])
  in
  Alcotest.(check int) "asserted over the wire" 1 (num "count" j);
  let j =
    roundtrip ic oc
      (Json.Obj
         [ ("op", Json.Str "query"); ("id", Json.int 3);
           ("goal", Json.Str "spin"); ("deadline_ms", Json.int 50) ])
  in
  Alcotest.(check bool) "wire deadline" true
    (Json.member "cancelled" j = Some (Json.Str "deadline"));
  let j = roundtrip ic oc (Json.Obj [ ("op", Json.Str "stats") ]) in
  Alcotest.(check int) "served" 3 (num "served" j);
  Alcotest.(check int) "one connection" 1 (num "connections" j);
  let j = roundtrip ic oc (Json.Obj [ ("op", Json.Str "quit") ]) in
  Alcotest.(check bool) "bye" true (Json.member "bye" j = Some (Json.Bool true));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Server.drain srv;
  Server.wait srv;
  (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ())

let test_server_drain_cancels () =
  (* drain mid-query: the in-flight query answers as cancelled and the
     server shuts down within a bounded interval *)
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ace_test_drain_%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.create ~workers:1 ~listen:(Unix.ADDR_UNIX sock)
      (Lazy.force prepared)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("op", Json.Str "query"); ("id", Json.int 1);
            ("goal", Json.Str "spin") ]));
  output_char oc '\n';
  flush oc;
  Unix.sleepf 0.05;
  let t0 = Unix.gettimeofday () in
  Server.drain srv;
  let j =
    match Json.parse (input_line ic) with
    | Ok j -> j
    | Error m -> Alcotest.failf "bad drain response: %s" m
  in
  Server.wait srv;
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Alcotest.(check bool) "cancelled by drain" true
    (Json.member "cancelled" j = Some (Json.Str "requested"));
  Alcotest.(check bool) "drain bounded" true (ms < 5000.0);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ())

let suite =
  [
    Alcotest.test_case "protocol: parse requests" `Quick test_protocol_parse;
    Alcotest.test_case "session: query" `Quick test_session_query;
    Alcotest.test_case "session: overlay assert/retract" `Quick
      test_session_overlay_ops;
    Alcotest.test_case "session: errors stay in-band" `Quick
      test_session_errors;
    Alcotest.test_case "session: deadline" `Quick test_session_deadline;
    Alcotest.test_case "session: cancel in flight" `Quick
      test_session_cancel_inflight;
    Alcotest.test_case "server: socket round trip" `Quick
      test_server_roundtrip;
    Alcotest.test_case "server: drain cancels in-flight" `Quick
      test_server_drain_cancels;
  ]
