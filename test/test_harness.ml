(* Experiment harness: registry completeness, sweep mechanics, report
   rendering and the extra (overhead/memory) measurements. *)

module Experiment = Ace_harness.Experiment
module Report = Ace_harness.Report
module Extras = Ace_harness.Extras

let test_registry_covers_paper () =
  let ids = List.map (fun e -> e.Experiment.id) Experiment.all in
  Alcotest.(check (list string)) "every table and figure present"
    [ "table1"; "table2"; "figure5"; "table3"; "table4"; "figure8"; "table5" ]
    ids;
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Experiment.id ^ " has workloads") true
        (e.Experiment.workloads <> []);
      Alcotest.(check bool) (e.Experiment.id ^ " has processors") true
        (e.Experiment.processors <> []))
    Experiment.all

let test_paper_processor_axes () =
  Alcotest.(check (list int)) "tables 1/2/4/5 axis" [ 1; 3; 5; 10 ]
    Experiment.table1.Experiment.processors;
  Alcotest.(check (list int)) "table 3 axis" [ 1; 2; 4; 8; 10 ]
    Experiment.table3.Experiment.processors;
  Alcotest.(check int) "figures sweep 1..10" 10
    (List.length Experiment.figure5.Experiment.processors)

let tiny_experiment =
  {
    Experiment.id = "tiny";
    title = "tiny sweep for tests";
    paper_ref = "none";
    optimization = Experiment.Lpco;
    workloads = [ Experiment.workload ~size:6 "map2" ];
    processors = [ 1; 2 ];
  }

let test_run_sweep () =
  let results = Experiment.run tiny_experiment in
  match results.Experiment.rows with
  | [ row ] ->
    Alcotest.(check int) "one cell per processor count" 2
      (List.length row.Experiment.cells);
    List.iter
      (fun cell ->
        Alcotest.(check bool) "times positive" true
          (cell.Experiment.unopt > 0 && cell.Experiment.opt > 0))
      row.Experiment.cells
  | _ -> Alcotest.fail "expected one row"

let test_improvement_percent () =
  let stats () = Ace_machine.Stats.create () in
  let cell unopt opt =
    {
      Experiment.unopt;
      opt;
      unopt_stats = stats ();
      opt_stats = stats ();
      unopt_metrics = Ace_obs.Metrics.of_stats (stats ());
      opt_metrics = Ace_obs.Metrics.of_stats (stats ());
    }
  in
  Alcotest.(check (float 0.001)) "50% faster" 50.0
    (Experiment.improvement_percent (cell 100 50));
  Alcotest.(check (float 0.001)) "10% slower" (-10.0)
    (Experiment.improvement_percent (cell 100 110));
  Alcotest.(check (float 0.001)) "zero base" 0.0
    (Experiment.improvement_percent (cell 0 10))

let test_apply_optimization () =
  let base = Ace_machine.Config.default in
  let lpco = Experiment.apply_optimization base Experiment.Lpco in
  Alcotest.(check bool) "lpco only" true
    (lpco.Ace_machine.Config.lpco && not lpco.Ace_machine.Config.lao);
  let all = Experiment.apply_optimization base Experiment.All in
  Alcotest.(check bool) "all on" true
    (all.Ace_machine.Config.lpco && all.Ace_machine.Config.lao
     && all.Ace_machine.Config.spo && all.Ace_machine.Config.pdo)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_renders () =
  let results = Experiment.run tiny_experiment in
  let text = Report.to_string results in
  Alcotest.(check bool) "mentions workload" true
    (String.length text > 0 && contains text "map2" && contains text "P=2")

let test_overhead_direction () =
  (* on a tiny deterministic workload, the optimized engine must be
     at least as close to sequential as the unoptimized one *)
  let rows =
    Extras.run_overhead ~benchmarks:[ "map2"; "occur" ]
      ~size_of:(fun _ -> 8) ()
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Extras.o_label ^ " overhead reduced") true
        (r.Extras.opt_overhead <= r.Extras.unopt_overhead);
      Alcotest.(check bool) (r.Extras.o_label ^ " parallel slower than seq at P=1")
        true
        (r.Extras.unopt_time >= r.Extras.seq_time))
    rows

let test_memory_direction () =
  let rows = Extras.run_memory ~benchmarks:[ "map2" ] ~agents:3 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "LPCO reduces stack words" true
        (r.Extras.opt_words < r.Extras.unopt_words))
    rows

let suite =
  [ Alcotest.test_case "registry covers paper" `Quick test_registry_covers_paper;
    Alcotest.test_case "processor axes" `Quick test_paper_processor_axes;
    Alcotest.test_case "run sweep" `Quick test_run_sweep;
    Alcotest.test_case "improvement percent" `Quick test_improvement_percent;
    Alcotest.test_case "apply optimization" `Quick test_apply_optimization;
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "overhead direction" `Quick test_overhead_direction;
    Alcotest.test_case "memory direction" `Quick test_memory_direction ]
