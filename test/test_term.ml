(* Unit and property tests for the term representation. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
open Test_util

let test_constructors () =
  check_term "atom" "foo" (Term.atom "foo");
  check_term "int" "42" (Term.int 42);
  check_term "struct" "f(1,2)" (Term.app "f" [ Term.int 1; Term.int 2 ]);
  check_term "zero-arity struct collapses to atom" "g" (Term.struct_ "g" [||]);
  check_term "list" "[1,2,3]"
    (Term.of_list [ Term.int 1; Term.int 2; Term.int 3 ])

let test_deref () =
  let v = Term.fresh_var () in
  let w = Term.fresh_var () in
  v.Term.binding <- Some (Term.Var w);
  w.Term.binding <- Some (Term.int 7);
  check_term "deref follows chains" "7" (Term.deref (Term.Var v))

let test_to_list () =
  let t = term "[1,2,3]" in
  (match Term.to_list t with
   | Some [ a; b; c ] ->
     check_term "first" "1" a;
     check_term "second" "2" b;
     check_term "third" "3" c
   | Some _ | None -> Alcotest.fail "expected a 3-element list");
  Alcotest.(check bool) "improper list" true (Term.to_list (term "[1|X]") = None);
  Alcotest.(check bool) "non-list" true (Term.to_list (term "f(x)") = None)

let test_ground_and_variables () =
  Alcotest.(check bool) "ground" true (Term.is_ground (term "f(g(1),[a,b])"));
  Alcotest.(check bool) "open" false (Term.is_ground (term "f(X)"));
  let t = term "f(X, g(Y, X), Z)" in
  Alcotest.(check int) "three distinct variables" 3
    (List.length (Term.variables t))

let test_size_depth () =
  Alcotest.(check int) "size of atom" 1 (Term.size (term "a"));
  Alcotest.(check int) "size of f(1,g(2))" 4 (Term.size (term "f(1,g(2))"));
  Alcotest.(check int) "depth of f(1,g(2))" 3 (Term.depth (term "f(1,g(2))"))

let test_equal () =
  Alcotest.(check bool) "structural equal" true
    (Term.equal (term "f(1,[a])") (term "f(1,[a])"));
  Alcotest.(check bool) "different" false (Term.equal (term "f(1)") (term "f(2)"));
  let v = Term.fresh_var () in
  Alcotest.(check bool) "var equal to itself" true
    (Term.equal (Term.Var v) (Term.Var v));
  Alcotest.(check bool) "distinct vars differ" false
    (Term.equal (Term.var ()) (Term.var ()))

let test_standard_order () =
  let le a b = Term.compare (term a) (term b) <= 0 in
  Alcotest.(check bool) "Int < Atom" true (le "42" "a");
  Alcotest.(check bool) "Atom < Struct" true (le "zzz" "f(1)");
  Alcotest.(check bool) "structs by arity first" true (le "z(1)" "a(1,2)");
  Alcotest.(check bool) "then by name" true (le "a(1)" "b(0)");
  Alcotest.(check bool) "then by args" true (le "f(1)" "f(2)");
  Alcotest.(check bool) "Var smallest" true
    (Term.compare (Term.var ()) (term "0") < 0)

(* Regression: a snapshot must not share mutable cells with the live term
   (a bound variable dereferencing to an atom used to leak through). *)
let test_copy_resolved_immutable () =
  let trail = Trail.create () in
  let steps = ref 0 in
  let x = Term.var () in
  let t = Term.app "f" [ x; Term.int 1 ] in
  assert (Unify.unify ~trail ~steps x (Term.atom "hello"));
  let snapshot = Term.copy_resolved t in
  ignore (Trail.undo_to trail 0);
  assert (Unify.unify ~trail ~steps x (Term.int 99));
  check_term "snapshot unaffected by rebinding" "f(hello,1)" snapshot

let test_rename_shares_table () =
  let table = Hashtbl.create 8 in
  let x = Term.var () in
  let head = Term.app "p" [ x ] in
  let body = Term.app "q" [ x ] in
  let head' = Term.rename_with table head in
  let body' = Term.rename_with table body in
  match Term.deref head', Term.deref body' with
  | Term.Struct (_, [| Term.Var a |]), Term.Struct (_, [| Term.Var b |]) ->
    Alcotest.(check bool) "renamed consistently" true (a.Term.vid = b.Term.vid);
    Alcotest.(check bool) "fresh variable" true
      (match Term.deref x with Term.Var v -> v.Term.vid <> a.Term.vid | _ -> false)
  | _ -> Alcotest.fail "unexpected shapes"

let test_functor_of () =
  (* the string view; the symbol view Term.functor_of is exercised by the
     database tests *)
  Alcotest.(check (option (pair string int))) "atom" (Some ("foo", 0))
    (Term.functor_name_of (term "foo"));
  Alcotest.(check (option (pair string int))) "struct" (Some ("f", 2))
    (Term.functor_name_of (term "f(1,2)"));
  Alcotest.(check (option (pair string int))) "int" None
    (Term.functor_name_of (term "42"))

(* properties *)

let prop_equal_reflexive =
  qcheck "equal reflexive" ground_term_gen (fun t -> Term.equal t t)

let prop_compare_reflexive =
  qcheck "compare t t = 0" ground_term_gen (fun t -> Term.compare t t = 0)

let prop_compare_antisymmetric =
  qcheck "compare antisymmetric"
    QCheck2.Gen.(pair ground_term_gen ground_term_gen)
    (fun (a, b) ->
      let c = Term.compare a b and c' = Term.compare b a in
      (c = 0 && c' = 0) || (c > 0 && c' < 0) || (c < 0 && c' > 0))

let prop_compare_equal_consistent =
  qcheck "compare = 0 iff equal"
    QCheck2.Gen.(pair ground_term_gen ground_term_gen)
    (fun (a, b) -> Term.equal a b = (Term.compare a b = 0))

let prop_rename_preserves_ground =
  qcheck "rename of ground term is equal" ground_term_gen (fun t ->
      Term.equal t (Term.rename t))

let prop_size_positive =
  qcheck "size >= 1, depth >= 1" open_term_gen (fun t ->
      Term.size t >= 1 && Term.depth t >= 1)

let prop_of_to_list =
  qcheck "of_list/to_list round-trip"
    QCheck2.Gen.(list_size (int_range 0 8) ground_term_gen)
    (fun xs ->
      match Term.to_list (Term.of_list xs) with
      | Some ys -> List.length xs = List.length ys && List.for_all2 Term.equal xs ys
      | None -> false)

let suite =
  [ Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "deref" `Quick test_deref;
    Alcotest.test_case "to_list" `Quick test_to_list;
    Alcotest.test_case "ground and variables" `Quick test_ground_and_variables;
    Alcotest.test_case "size and depth" `Quick test_size_depth;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "standard order" `Quick test_standard_order;
    Alcotest.test_case "copy_resolved immutability" `Quick
      test_copy_resolved_immutable;
    Alcotest.test_case "rename shares table" `Quick test_rename_shares_table;
    Alcotest.test_case "functor_of" `Quick test_functor_of;
    prop_equal_reflexive;
    prop_compare_reflexive;
    prop_compare_antisymmetric;
    prop_compare_equal_consistent;
    prop_rename_preserves_ground;
    prop_size_positive;
    prop_of_to_list ]
