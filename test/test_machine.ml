(* Cost model, statistics and configuration. *)

module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
open Test_util

let test_cost_model_positive () =
  let c = Cost.default in
  let all =
    [ c.Cost.unify_step; c.Cost.index_lookup; c.Cost.clause_try; c.Cost.builtin;
      c.Cost.arith_op; c.Cost.trail_push; c.Cost.untrail; c.Cost.cp_alloc;
      c.Cost.cp_restore; c.Cost.backtrack_node; c.Cost.frame_alloc;
      c.Cost.slot_init; c.Cost.marker_alloc; c.Cost.frame_linear_scan;
      c.Cost.frame_unwind; c.Cost.kill_signal; c.Cost.copy_cell;
      c.Cost.copy_setup; c.Cost.or_scan_node; c.Cost.lao_update;
      c.Cost.steal_poll; c.Cost.steal_grab; c.Cost.task_switch;
      c.Cost.runtime_check ]
  in
  Alcotest.(check bool) "all weights positive" true (List.for_all (fun x -> x > 0) all)

let test_cost_model_calibration_invariants () =
  let c = Cost.default in
  (* the relations the experiment shapes rely on *)
  Alcotest.(check bool) "LAO update dearer than private alloc" true
    (c.Cost.lao_update > c.Cost.cp_alloc);
  Alcotest.(check bool) "frame dearer than marker" true
    (c.Cost.frame_alloc > c.Cost.marker_alloc);
  Alcotest.(check bool) "flat scan cheaper than frame unwind" true
    (c.Cost.frame_linear_scan < c.Cost.frame_unwind);
  Alcotest.(check bool) "runtime checks are cheap" true
    (c.Cost.runtime_check <= c.Cost.unify_step)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.frames <- 3;
  a.Stats.max_frame_nesting <- 5;
  b.Stats.frames <- 4;
  b.Stats.max_frame_nesting <- 2;
  b.Stats.lpco_hits <- 7;
  Stats.merge_into ~into:a b;
  Alcotest.(check int) "sums counters" 7 a.Stats.frames;
  Alcotest.(check int) "max of nesting" 5 a.Stats.max_frame_nesting;
  Alcotest.(check int) "merges hits" 7 a.Stats.lpco_hits

let test_stats_fields_cover_record () =
  let s = Stats.create () in
  s.Stats.unify_steps <- 1;
  s.Stats.stack_words <- 2;
  let fields = Stats.fields s in
  Alcotest.(check bool) "fields non-empty" true (List.length fields > 20);
  Alcotest.(check (option int)) "first field" (Some 1)
    (List.assoc_opt "unify_steps" fields);
  Alcotest.(check (option int)) "last field" (Some 2)
    (List.assoc_opt "stack_words" fields)

(* Reflective completeness: every record field of Stats.t must be
   reachable through [fields] (and therefore through of_fields,
   merge_into, to_json and pp ~verbose, which the tests below pin to the
   same list).  Stats.t is all-int, so its runtime representation is a
   flat block whose size is the field count — a new counter that is not
   added to [fields] fails here immediately. *)
let test_stats_fields_reflect_record () =
  let s = Stats.create () in
  Alcotest.(check int) "fields covers every record field"
    (Obj.size (Obj.repr s))
    (List.length (Stats.fields s));
  (* distinct values survive an of_fields round-trip field-for-field *)
  let numbered =
    List.mapi (fun i (name, _) -> (name, i + 1)) (Stats.fields s)
  in
  let s' = Stats.of_fields numbered in
  Alcotest.(check bool) "of_fields sets every field" true
    (Stats.fields s' = numbered);
  (* to_json exports every field, with the round-tripped values *)
  (match Ace_obs.Json.parse (Stats.to_json s') with
   | Error msg -> Alcotest.failf "Stats.to_json: %s" msg
   | Ok v ->
     List.iter
       (fun (name, n) ->
         Alcotest.(check (option int))
           (Printf.sprintf "to_json exports %s" name)
           (Some n)
           (match Ace_obs.Json.member name v with
            | Some (Ace_obs.Json.Num f) -> Some (int_of_float f)
            | _ -> None))
       numbered);
  (* pp ~verbose prints every field name *)
  let verbose =
    Format.asprintf "@[<v>%a@]" (fun ppf -> Stats.pp ~verbose:true ppf) s'
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "pp ~verbose prints %s" name)
        true (contains verbose name))
    numbered;
  (* merge_into touches every summed counter: merging the numbered stats
     into a fresh record reproduces at least the summed fields, and no
     field of the merge result stays at 0 (max-fields included, since
     every input is positive) *)
  let fresh = Stats.create () in
  Stats.merge_into ~into:fresh s';
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "merge_into covers %s" name)
        true
        (v > 0))
    (Stats.fields fresh)

let test_stats_json_roundtrip () =
  let s = Stats.create () in
  s.Stats.unify_steps <- 12345;
  s.Stats.lao_hits <- 7;
  s.Stats.stack_words <- 99;
  let json = Stats.to_json s in
  (match Ace_obs.Json.parse json with
   | Error msg -> Alcotest.failf "Stats.to_json is not valid JSON: %s" msg
   | Ok v ->
     Alcotest.(check bool) "lao_hits in JSON" true
       (Ace_obs.Json.member "lao_hits" v = Some (Ace_obs.Json.int 7)));
  let s' = Stats.of_fields (Stats.fields s) in
  Alcotest.(check bool) "of_fields rebuilds every counter" true
    (Stats.fields s = Stats.fields s');
  (* unknown names are ignored, known ones applied *)
  let s'' = Stats.of_fields [ ("no_such_counter", 1); ("steals", 4) ] in
  Alcotest.(check int) "known field set" 4 s''.Stats.steals

let test_stats_pp_verbose () =
  let s = Stats.create () in
  s.Stats.copies <- 2;
  let terse = Format.asprintf "@[<v>%a@]" (fun ppf -> Stats.pp ppf) s in
  let verbose =
    Format.asprintf "@[<v>%a@]" (fun ppf -> Stats.pp ~verbose:true ppf) s
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "terse prints non-zero" true (contains terse "copies");
  Alcotest.(check bool) "terse hides zero counters" false
    (contains terse "lao_hits");
  Alcotest.(check bool) "verbose shows zero counters" true
    (contains verbose "lao_hits");
  Alcotest.(check int) "verbose prints every field"
    (List.length (Stats.fields s))
    (List.length
       (List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' verbose)))

let test_config_validate () =
  let bad_agents = { Config.default with Config.agents = 0 } in
  Alcotest.(check bool) "agents >= 1 enforced" true
    (match Config.validate bad_agents with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let bad_limit = { Config.default with Config.max_solutions = Some 0 } in
  Alcotest.(check bool) "max_solutions >= 1 enforced" true
    (match Config.validate bad_limit with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let bad_threshold = { Config.default with Config.seq_threshold = -1 } in
  Alcotest.(check bool) "seq_threshold >= 0 enforced" true
    (match Config.validate bad_threshold with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_config_presets () =
  let u = Config.unoptimized ~agents:7 () in
  Alcotest.(check bool) "unoptimized clears flags" true
    ((not u.Config.lpco) && (not u.Config.lao) && (not u.Config.spo)
     && (not u.Config.pdo) && u.Config.agents = 7);
  let o = Config.all_optimizations ~agents:3 () in
  Alcotest.(check bool) "all_optimizations sets the four paper flags" true
    (o.Config.lpco && o.Config.lao && o.Config.spo && o.Config.pdo);
  Alcotest.(check int) "granularity control stays off by default" 0
    o.Config.seq_threshold

let test_config_pp () =
  let s =
    Format.asprintf "%a" Config.pp
      { Config.default with Config.agents = 4; lpco = true; seq_threshold = 16 }
  in
  Alcotest.(check string) "pp format" "agents=4 opts={lpco,gc=16}" s

(* failure injection: engine errors inside simulated agents surface as
   exceptions rather than hanging the scheduler *)
let test_errors_propagate_from_agents () =
  let raises kind query =
    match
      Ace_core.Engine.solve_program kind
        { Config.default with Config.agents = 3 }
        ~program:"p(X, Y) :- q(X) & r(Y).\nq(1).\nr(Y) :- Y is foo + 1."
        ~query
    with
    | exception Ace_term.Arith.Error _ -> true
    | exception Ace_core.Errors.Engine_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "and-engine arithmetic error" true
    (raises Ace_core.Engine.And_parallel "p(X, Y)");
  Alcotest.(check bool) "or-engine undefined predicate" true
    (match
       Ace_core.Engine.solve_program Ace_core.Engine.Or_parallel
         { Config.default with Config.agents = 2 }
         ~program:"s(X) :- t(X)." ~query:"s(X)"
     with
     | exception Ace_core.Errors.Engine_error _ -> true
     | _ -> false)

let suite =
  [ Alcotest.test_case "cost model positive" `Quick test_cost_model_positive;
    Alcotest.test_case "cost calibration invariants" `Quick
      test_cost_model_calibration_invariants;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "stats fields" `Quick test_stats_fields_cover_record;
    Alcotest.test_case "stats fields reflect the record" `Quick
      test_stats_fields_reflect_record;
    Alcotest.test_case "stats json roundtrip" `Quick test_stats_json_roundtrip;
    Alcotest.test_case "stats pp verbose" `Quick test_stats_pp_verbose;
    Alcotest.test_case "config validation" `Quick test_config_validate;
    Alcotest.test_case "config presets" `Quick test_config_presets;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    Alcotest.test_case "agent errors propagate" `Quick
      test_errors_propagate_from_agents ]
