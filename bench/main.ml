(* Wall-clock benchmarks (bechamel): one Test.make per table and figure of
   the paper, plus ablation benches for the design choices called out in
   DESIGN.md.

   Each benchmark body runs one representative measurement cell of the
   corresponding experiment — the workload of the table's first row at the
   table's largest processor count, optimization on — so the numbers here
   track the cost of *regenerating* the paper's results.  (The simulated
   cycle counts that the tables themselves report are deterministic and do
   not depend on this host; run `ace_experiments` for those.)

     dune exec bench/main.exe             # bechamel suite + par-or sweep
     dune exec bench/main.exe -- par_or   # only the domain sweep (CI smoke)
     dune exec bench/main.exe -- par_and  # and-parallel frame sweep (CI smoke)
     dune exec bench/main.exe -- seq_core # engine hot-path wall clock + digests
     dune exec bench/main.exe -- alloc    # minor-words/solution gate (CI smoke)
     dune exec bench/main.exe -- tabling  # SLG answer-table suite (CI smoke)

   The first two forms write BENCH_par_or.json (wall-clock runs of the
   hardware or-parallel engine at 1, 2 and 4 domains) to the current
   directory; `par_and` writes BENCH_par_and.json (parcall frames at the
   same domain counts).
*)

open Bechamel
open Toolkit

module Config = Ace_machine.Config
module Cost = Ace_machine.Cost
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs
module Experiment = Ace_harness.Experiment

(* Bench sizes are scaled down from the experiment defaults so a single
   iteration stays in the tens of milliseconds. *)
let bench_size name =
  let b = Programs.find name in
  max b.Programs.small_size (b.Programs.default_size / 4)

let run_benchmark ?(config = Config.default) name size =
  let b = Programs.find name in
  let program = b.Programs.program size and query = b.Programs.query size in
  Engine.solve_program b.Programs.kind config ~program ~query

(* One cell of a paper experiment: first workload, largest P, opt on. *)
let experiment_cell (e : Experiment.t) =
  let w = List.hd e.Experiment.workloads in
  let agents = List.fold_left max 1 e.Experiment.processors in
  let config =
    Experiment.apply_optimization { Config.default with agents }
      e.Experiment.optimization
  in
  let b = Programs.find w.Experiment.w_benchmark in
  let size = max b.Programs.small_size (w.Experiment.w_size / 4) in
  fun () -> ignore (run_benchmark ~config w.Experiment.w_benchmark size)

let paper_tests =
  List.map
    (fun (e : Experiment.t) ->
      Test.make ~name:e.Experiment.id (Staged.stage (experiment_cell e)))
    Experiment.all

(* X1/X2: the unnumbered claims. *)
let extra_tests =
  [ Test.make ~name:"overhead"
      (Staged.stage (fun () ->
           ignore
             (Ace_harness.Extras.run_overhead ~benchmarks:[ "map2"; "occur" ]
                ~size_of:(fun b -> max b.Programs.small_size (b.Programs.default_size / 8))
                ())));
    Test.make ~name:"memory"
      (Staged.stage (fun () ->
           ignore (Ace_harness.Extras.run_memory ~benchmarks:[ "occur" ] ~agents:3 ()))) ]

(* Ablations (DESIGN.md §5):
   - lao-copy-cost: LAO's profit depends on the stack-copy cost; double it
     and the LAO benefit at 8 workers should grow.
   - lpco-vs-unopt: the flattened and nested runs side by side.
   - engine substrate microbenches: parser and sequential resolution. *)
let ablation_tests =
  let queen_size = 5 in
  let copy2 = { Cost.default with Cost.copy_cell = 2 * Cost.default.Cost.copy_cell } in
  [ Test.make ~name:"ablate:lao-copy-cost"
      (Staged.stage (fun () ->
           ignore
             (run_benchmark
                ~config:{ Config.default with agents = 8; lao = true; cost = copy2 }
                "queen2" queen_size)));
    Test.make ~name:"ablate:lpco-on"
      (Staged.stage (fun () ->
           ignore
             (run_benchmark
                ~config:{ Config.default with agents = 4; lpco = true }
                "map2" (bench_size "map2"))));
    Test.make ~name:"ablate:lpco-off"
      (Staged.stage (fun () ->
           ignore
             (run_benchmark ~config:{ Config.default with agents = 4 } "map2"
                (bench_size "map2"))));
    Test.make ~name:"ablate:granularity-ctl"
      (Staged.stage (fun () ->
           ignore
             (run_benchmark
                ~config:{ Config.default with agents = 4; seq_threshold = 24 }
                "takeuchi" 10)));
    (let source = (Programs.find "annotator").Programs.program 0 in
     Test.make ~name:"substrate:parse"
       (Staged.stage (fun () ->
            ignore (Ace_lang.Program.consult_string source))));
    (let b = Programs.find "quick_sort" in
     let program = b.Programs.program 0 and query = b.Programs.query 40 in
     Test.make ~name:"substrate:seq-resolution"
       (Staged.stage (fun () ->
            ignore (Engine.solve_program Engine.Sequential Config.default ~program ~query)))) ]

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"ace" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

(* The hardware or-parallel sweep is measured directly (min of repeats)
   rather than through bechamel: each row is a multi-domain run whose
   set-up/tear-down (Domain.spawn/join) is part of the measured cost. *)
let par_or_sweep () =
  Ace_harness.Extras.warn_domains ~requested:4;
  let rows = Ace_harness.Extras.run_par_or () in
  Format.printf "@[<v>%a@]@." Ace_harness.Extras.pp_par_or rows;
  let json = Ace_harness.Extras.par_or_json rows in
  Out_channel.with_open_text "BENCH_par_or.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_par_or.json (%d rows)@." (List.length rows);
  if not (List.for_all (fun r -> r.Ace_harness.Extras.p_matches_seq) rows)
  then begin
    Format.eprintf "par-or solution set diverged from the sequential engine@.";
    exit 1
  end

(* The hardware and-parallel sweep: parcall frames at 1, 2 and 4 domains,
   SPO off so every independent '&' builds a frame.  Fails if any run's
   solution multiset diverges from the sequential engine, or if no frame
   was ever built (the machinery silently not running is itself a bug). *)
let par_and_sweep () =
  Ace_harness.Extras.warn_domains ~requested:4;
  let rows = Ace_harness.Extras.run_par_and () in
  Format.printf "@[<v>%a@]@." Ace_harness.Extras.pp_par_and rows;
  let json = Ace_harness.Extras.par_and_json rows in
  Out_channel.with_open_text "BENCH_par_and.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_par_and.json (%d rows)@." (List.length rows);
  if not (List.for_all (fun r -> r.Ace_harness.Extras.a_matches_seq) rows)
  then begin
    Format.eprintf "par-and solution multiset diverged from the sequential engine@.";
    exit 1
  end;
  if List.for_all (fun r -> r.Ace_harness.Extras.a_frames = 0) rows then begin
    Format.eprintf "par-and sweep never built a parcall frame@.";
    exit 1
  end

(* The sequential-core smoke: wall clock of the hot path per engine, plus a
   canonical-solution-set digest compared against the seed recording in
   bench/seq_core_expected.txt (guards core refactors against semantic
   drift).  `record` regenerates the expected file. *)
let seq_core_run ~record () =
  let rows =
    (* pderiv's experiment-default size solves in ~0.25 ms — below
       reliable wall-clock resolution — so the bench quadruples it *)
    Ace_harness.Extras.run_seq_core
      ~size_of:(fun b ->
        if b.Programs.name = "pderiv" then 4 * b.Programs.default_size
        else b.Programs.default_size)
      ()
  in
  Format.printf "@[<v>%a@]@." Ace_harness.Extras.pp_seq_core rows;
  let json = Ace_harness.Extras.seq_core_json rows in
  Out_channel.with_open_text "BENCH_seq_core.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_seq_core.json (%d rows)@." (List.length rows);
  let expected_file = "bench/seq_core_expected.txt" in
  if record then begin
    Out_channel.with_open_text expected_file (fun oc ->
        Out_channel.output_string oc
          (Ace_harness.Extras.expected_of_rows rows));
    Format.printf "recorded %s@." expected_file
  end
  else
    match In_channel.with_open_text expected_file In_channel.input_all with
    | exception Sys_error _ ->
      Format.eprintf "missing %s (run `seq_core record` once)@." expected_file;
      exit 1
    | expected ->
      (match Ace_harness.Extras.check_seq_core ~expected rows with
       | [] -> Format.printf "solution sets match the seed recording@."
       | diffs ->
         List.iter (fun d -> Format.eprintf "seq-core drift: %s@." d) diffs;
         exit 1)

(* The allocation-regression gate: minor GC words per solution of the
   sequential engine (interpreted and compiled) on the seq-core suite,
   compared against pinned baselines in bench/seq_core_alloc_expected.txt
   with 10% relative tolerance.  Allocation counts are deterministic for
   the single-domain engine, so one repeat suffices.  `record` pins the
   current numbers. *)
let alloc_run ~record () =
  let rows =
    Ace_harness.Extras.run_seq_core ~engines:[ Engine.Sequential ] ~repeat:1
      ~size_of:(fun b ->
        if b.Programs.name = "pderiv" then 4 * b.Programs.default_size
        else b.Programs.default_size)
      ()
  in
  Format.printf "@[<v>%a@]@." Ace_harness.Extras.pp_seq_core rows;
  let json = Ace_harness.Extras.seq_core_json rows in
  Out_channel.with_open_text "BENCH_alloc.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_alloc.json (%d rows)@." (List.length rows);
  let expected_file = "bench/seq_core_alloc_expected.txt" in
  if record then begin
    Out_channel.with_open_text expected_file (fun oc ->
        Out_channel.output_string oc
          (Ace_harness.Extras.alloc_expected_of_rows rows));
    Format.printf "recorded %s@." expected_file
  end
  else
    match In_channel.with_open_text expected_file In_channel.input_all with
    | exception Sys_error _ ->
      Format.eprintf "missing %s (run `alloc record` once)@." expected_file;
      exit 1
    | expected ->
      (match Ace_harness.Extras.check_alloc ~expected rows with
       | [] -> Format.printf "allocation per solution within 10%% of the pinned baselines@."
       | regressions ->
         List.iter
           (fun d -> Format.eprintf "alloc regression: %s@." d)
           regressions;
         exit 1)

(* `profile`: run the seq-core suite on the compiled sequential engine
   under the per-predicate profiler, assert the known top-1 hotspot per
   benchmark, and measure profiler overhead two ways: enabled vs
   disabled in this process, and disabled vs the pinned wall times in
   BENCH_seq_core.json.  The hooks compile to a load and a branch when
   profiling is off, so the disabled delta must stay within wall-clock
   noise (< 2%% target on the geomean). *)
module Prof = Ace_obs.Prof
module Json = Ace_obs.Json

(* Known hotspots, pinned: the top-ranked user predicate by exclusive
   cost.  A benchmark absent from this table is printed but not
   asserted. *)
let profile_expected =
  [ ("queen1", [ "noatt/3" ]);
    ("queen2", [ "noatt/3" ]);
    ("puzzle", [ "sel/3" ]);
    ("members", [ "member/2" ]);
    ("maps", [ "color/1"; "next/2" ]);
    ("pderiv", [ "d/2" ]);
    ("matrix", [ "dot/3"; "mult/3" ]);
    ("hanoi", [ "app/3"; "hanoi/5" ]);
    ("takeuchi", [ "tak/4" ]);
    ("bt_cluster", [ "cluster/3" ]);
    ("quick_sort", [ "qsort/2"; "part/4" ]) ]

let profile_size b =
  if b.Programs.name = "pderiv" then 4 * b.Programs.default_size
  else b.Programs.default_size

let profile_config = { Config.default with Config.agents = 1; compile = true }

let profile_run () =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun name ->
      let b = Programs.find name in
      let size = profile_size b in
      let program = b.Programs.program size and query = b.Programs.query size in
      let prof = Prof.create () in
      ignore
        (Engine.solve_program ~prof Engine.Sequential profile_config ~program
           ~query);
      match Prof.top_hotspot prof with
      | None -> fail "%s: empty profile" name
      | Some row ->
        Format.printf "%-12s hotspot %-16s %9d calls %12d cycles@." name
          row.Prof.r_name row.Prof.r_calls row.Prof.r_cycles;
        (match List.assoc_opt name profile_expected with
         | Some allowed when not (List.mem row.Prof.r_name allowed) ->
           fail "%s: hotspot %s, expected one of [%s]" name row.Prof.r_name
             (String.concat "; " allowed)
         | _ -> ()))
    Ace_harness.Extras.seq_core_benchmarks;
  (* Enabled-vs-disabled overhead, best-of-5 in this process. *)
  let measure ~profiled name =
    let b = Programs.find name in
    let size = profile_size b in
    let program = b.Programs.program size and query = b.Programs.query size in
    let p = Ace_lang.Program.consult_string program in
    let q = Ace_lang.Program.parse_query query in
    let db = Ace_lang.Program.db p in
    Ace_lang.Database.freeze db;
    let best = ref infinity in
    for _ = 1 to 5 do
      Gc.full_major ();
      let prof = if profiled then Prof.create () else Prof.disabled in
      let t0 = Unix.gettimeofday () in
      ignore
        (Engine.solve ~prof Engine.Sequential profile_config db
           q.Ace_lang.Program.goal);
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      if ms < !best then best := ms
    done;
    !best
  in
  let overhead_benchmarks = [ "queen1"; "takeuchi"; "quick_sort" ] in
  let log_sum = ref 0. in
  List.iter
    (fun name ->
      let off = measure ~profiled:false name in
      let on = measure ~profiled:true name in
      log_sum := !log_sum +. log (on /. off);
      Format.printf "%-12s disabled %8.3f ms   enabled %8.3f ms   x%.3f@."
        name off on (on /. off))
    overhead_benchmarks;
  Format.printf "profiler-enabled overhead geomean: x%.3f@."
    (exp (!log_sum /. float_of_int (List.length overhead_benchmarks)));
  (* Disabled wall clock vs the pinned baseline recording. *)
  (match In_channel.with_open_text "BENCH_seq_core.json" In_channel.input_all with
   | exception Sys_error _ ->
     Format.printf "no BENCH_seq_core.json; skipping the baseline comparison@."
   | text -> (
     let baseline =
       match Json.parse text with
       | Error _ -> []
       | Ok doc ->
         let rows =
           Option.bind (Json.member "rows" doc) Json.to_list
           |> Option.value ~default:[]
         in
         List.filter_map
           (fun row ->
             match
               ( Json.member "benchmark" row,
                 Json.member "engine" row,
                 Json.member "wall_ms" row )
             with
             | Some (Json.Str b), Some (Json.Str "seq/c"), Some (Json.Num w) ->
               Some (b, w)
             | _ -> None)
           rows
     in
     match baseline with
     | [] -> Format.printf "BENCH_seq_core.json has no seq/c rows; skipping@."
     | baseline ->
       let log_sum = ref 0. and n = ref 0 in
       List.iter
         (fun (name, base_ms) ->
           let now_ms = measure ~profiled:false name in
           log_sum := !log_sum +. log (now_ms /. base_ms);
           incr n)
         baseline;
       let geo = exp (!log_sum /. float_of_int !n) in
       Format.printf
         "disabled-profiler geomean vs BENCH_seq_core.json (seq/c): x%.3f \
          (target < 1.02)@."
         geo;
       if geo > 1.15 then
         fail "disabled-profiler wall clock regressed x%.3f vs baseline" geo));
  match !failures with
  | [] -> Format.printf "profile: all hotspot assertions passed@."
  | fs ->
    List.iter (fun f -> Format.eprintf "profile: %s@." f) (List.rev fs);
    exit 1

(* `tabling`: wall-clock suite for the SLG answer table — left-recursive
   reachability over a cyclic graph, same-generation over a complete
   binary tree, and doubly-recursive transitive closure — on all four
   engines.  Tabled results are answer *sets*, so each run's solution
   count is asserted exactly; a lost or duplicated answer fails the
   bench.  Writes BENCH_tabling.json (wall clock, answer counts and
   table counters per row) with the standard host object. *)

let tabling_workloads =
  let path_cycle n =
    let b = Buffer.create 4096 in
    Buffer.add_string b ":- table(path/2).\n";
    for i = 0 to n - 1 do
      Printf.bprintf b "edge(n%d, n%d).\n" i ((i + 1) mod n)
    done;
    for i = 0 to (n / 10) - 1 do
      Printf.bprintf b "edge(n%d, n%d).\n" (i * 10) ((i * 10 + 13) mod n)
    done;
    Buffer.add_string b "path(X, Y) :- edge(X, Y).\n";
    Buffer.add_string b "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
    Buffer.contents b
  in
  let tc_double n =
    let b = Buffer.create 4096 in
    Buffer.add_string b ":- table(path/2).\n";
    for i = 0 to n - 1 do
      Printf.bprintf b "edge(n%d, n%d).\n" i ((i + 1) mod n)
    done;
    Buffer.add_string b "path(X, Y) :- edge(X, Y).\n";
    Buffer.add_string b "path(X, Y) :- path(X, Z), path(Z, Y).\n";
    Buffer.contents b
  in
  let same_gen depth =
    (* complete binary tree, heap numbering: node 1 is the root and the
       leaves are 2^depth .. 2^(depth+1)-1 *)
    let b = Buffer.create 4096 in
    Buffer.add_string b ":- table(sg/2).\n";
    let last = (1 lsl (depth + 1)) - 1 in
    for i = 1 to last do
      Printf.bprintf b "node(n%d).\n" i;
      if 2 * i <= last then Printf.bprintf b "edge(n%d, n%d).\n" i (2 * i);
      if (2 * i) + 1 <= last then
        Printf.bprintf b "edge(n%d, n%d).\n" i ((2 * i) + 1)
    done;
    Buffer.add_string b "sg(X, X) :- node(X).\n";
    Buffer.add_string b "sg(X, Y) :- edge(P, X), sg(P, Q), edge(Q, Y).\n";
    Buffer.contents b
  in
  [ ("path_cycle", path_cycle 120, "path(n0, X)", 120);
    ("tc_double", tc_double 60, "path(n0, X)", 60);
    (* every leaf is the same generation as the leftmost leaf *)
    ("same_gen", same_gen 6, "sg(n64, X)", 64) ]

let tabling_run () =
  let engines =
    [ (Engine.Sequential, 1); (Engine.And_parallel, 4);
      (Engine.Or_parallel, 4); (Engine.Par_or, 2); (Engine.Par_or, 4) ]
  in
  let rows = ref [] in
  let failed = ref false in
  List.iter
    (fun (bench, program, query, expected) ->
      List.iter
        (fun (kind, agents) ->
          let config =
            { (Config.all_optimizations ~agents ()) with Config.compile = true }
          in
          let best = ref infinity and answers = ref 0 in
          let stats = ref None in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            let r = Engine.solve_program kind config ~program ~query in
            let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
            if ms < !best then best := ms;
            answers := List.length r.Engine.solutions;
            stats := Some r.Engine.stats;
            if !answers <> expected then begin
              Format.eprintf
                "tabling: %s on %s@%d produced %d answers, expected %d@."
                bench (Engine.kind_to_string kind) agents !answers expected;
              failed := true
            end
          done;
          let st = Option.get !stats in
          Format.printf
            "%-12s %s@%d %5d answers %10.2f ms   subgoals %d  answers %d  hits %d@."
            bench (Engine.kind_to_string kind) agents !answers !best
            st.Ace_machine.Stats.table_subgoals
            st.Ace_machine.Stats.table_answers
            st.Ace_machine.Stats.table_answer_hits;
          rows :=
            Json.Obj
              [ ("benchmark", Json.Str bench);
                ("engine", Json.Str (Engine.kind_to_string kind));
                ("agents", Json.int agents);
                ("wall_ms", Json.Num !best);
                ("answers", Json.int !answers);
                ("table_subgoals", Json.int st.Ace_machine.Stats.table_subgoals);
                ("table_answers", Json.int st.Ace_machine.Stats.table_answers);
                ("answer_hits", Json.int st.Ace_machine.Stats.table_answer_hits);
                ("variant_hits", Json.int st.Ace_machine.Stats.table_variant_hits);
                ("suspends", Json.int st.Ace_machine.Stats.table_suspends);
                ("resumes", Json.int st.Ace_machine.Stats.table_resumes) ]
            :: !rows)
        engines)
    tabling_workloads;
  let json =
    Json.to_string
      (Json.Obj
         [ ("host", Ace_harness.Extras.host_json ());
           ("rows", Json.List (List.rev !rows)) ])
  in
  Out_channel.with_open_text "BENCH_tabling.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_tabling.json (%d rows)@." (List.length !rows);
  if !failed then begin
    Format.eprintf "tabling: an engine lost or duplicated tabled answers@.";
    exit 1
  end

(* `serve [clients=N] [queries=Q]`: wall-clock suite for the query
   server (lib/serve) — an in-process Server on a Unix socket, each
   client thread holding one connection (one session) and running Q
   line-delimited JSON queries back to back.  Rows report queries/sec
   and p50/p99 latency at clients x domains; a final deadline row sends
   a non-terminating query with a wall-clock deadline and asserts the
   cancellation lands within a bounded interval.  Writes
   BENCH_serve.json with the standard host object. *)

let serve_program =
  let b = Buffer.create 4096 in
  let n = 40 in
  for i = 0 to n - 2 do
    Printf.bprintf b "edge(n%d, n%d).\n" i (i + 1);
    if i mod 8 = 0 && i + 9 < n then
      Printf.bprintf b "edge(n%d, n%d).\n" i (i + 9)
  done;
  Buffer.add_string b "path(X, Y) :- edge(X, Y).\n";
  Buffer.add_string b "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  (* unbounded backtracking, zero solutions: the deadline row's query *)
  Buffer.add_string b "gen(z).\ngen(s(N)) :- gen(N).\n";
  Buffer.add_string b "spin :- gen(N), never(N).\nnever(none).\n";
  Buffer.contents b

let serve_goal = "path(n0, X)"

(* One request/response round trip on an open connection. *)
let serve_roundtrip ic oc req =
  output_string oc (Json.to_string req);
  output_char oc '\n';
  flush oc;
  match Json.parse (input_line ic) with
  | Ok j -> j
  | Error m -> failwith ("serve bench: bad response json: " ^ m)

let serve_connect addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let serve_client addr ~queries ~expected ~failed () =
  let fd, ic, oc = serve_connect addr in
  let lat = ref [] in
  for i = 1 to queries do
    let t0 = Unix.gettimeofday () in
    let j =
      serve_roundtrip ic oc
        (Json.Obj
           [ ("op", Json.Str "query"); ("id", Json.int i);
             ("goal", Json.Str serve_goal) ])
    in
    lat := ((Unix.gettimeofday () -. t0) *. 1e3) :: !lat;
    (match Json.member "count" j with
    | Some (Json.Num c) when int_of_float c = expected -> ()
    | _ ->
      Format.eprintf "serve: bad answer %s@." (Json.to_string j);
      Atomic.set failed true)
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !lat

let serve_percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (p *. float_of_int (n - 1)))))

let serve_run ~clients ~queries =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ace_bench_serve_%d.sock" (Unix.getpid ()))
  in
  let addr = Unix.ADDR_UNIX sock in
  let prepared = Engine.prepare_string serve_program in
  let expected =
    let r =
      Engine.solve Engine.Sequential Config.default (Engine.database prepared)
        (Ace_lang.Program.parse_query serve_goal).Ace_lang.Program.goal
    in
    List.length r.Engine.solutions
  in
  Format.printf "serve: %d solutions per query, socket %s@." expected sock;
  let failed = Atomic.make false in
  let rows = ref [] in
  let combos =
    (* the CI host may be single-core: modest domain counts only *)
    [ (1, Engine.Sequential, 1); (2, Engine.Sequential, 1);
      (clients, Engine.Sequential, 1); (2, Engine.Par_or, 2) ]
  in
  List.iter
    (fun (nclients, kind, agents) ->
      let config =
        { (Config.all_optimizations ~agents ()) with Config.compile = true }
      in
      let srv =
        Ace_server.Server.create ~workers:4 ~engine:kind ~config ~listen:addr
          prepared
      in
      let results = Array.make nclients [] in
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init nclients (fun i ->
            Thread.create
              (fun () ->
                try results.(i) <- serve_client addr ~queries ~expected ~failed ()
                with e ->
                  Format.eprintf "serve: client died: %s@."
                    (Printexc.to_string e);
                  Atomic.set failed true)
              ())
      in
      List.iter Thread.join threads;
      let wall_s = Unix.gettimeofday () -. t0 in
      Ace_server.Server.drain srv;
      Ace_server.Server.wait srv;
      let lats = Array.of_list (List.concat (Array.to_list results)) in
      Array.sort compare lats;
      if Array.length lats = 0 then Atomic.set failed true
      else begin
        let total = nclients * queries in
        let qps = float_of_int total /. wall_s in
        let p50 = serve_percentile lats 0.50
        and p99 = serve_percentile lats 0.99 in
        Format.printf
          "serve %d client(s) %s@%d  %4d queries %8.1f q/s  p50 %6.2f ms  \
           p99 %6.2f ms@."
          nclients (Engine.kind_to_string kind) agents total qps p50 p99;
        rows :=
          Json.Obj
            [ ("clients", Json.int nclients);
              ("engine", Json.Str (Engine.kind_to_string kind));
              ("domains", Json.int agents);
              ("workers", Json.int 4);
              ("queries", Json.int total);
              ("qps", Json.Num qps);
              ("p50_ms", Json.Num p50);
              ("p99_ms", Json.Num p99) ]
          :: !rows
      end)
    combos;
  (* deadline row: a query that never terminates on its own must come
     back cancelled within a bounded interval of its deadline *)
  let deadline_ms = 80 in
  let overshoot_bound_ms = 2000.0 in
  let srv =
    Ace_server.Server.create ~workers:2 ~engine:Engine.Sequential
      ~config:{ Config.default with Config.compile = true }
      ~listen:addr prepared
  in
  let fd, ic, oc = serve_connect addr in
  let t0 = Unix.gettimeofday () in
  let j =
    serve_roundtrip ic oc
      (Json.Obj
         [ ("op", Json.Str "query"); ("id", Json.int 1);
           ("goal", Json.Str "spin"); ("deadline_ms", Json.int deadline_ms) ])
  in
  let observed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Ace_server.Server.drain srv;
  Ace_server.Server.wait srv;
  let cancelled =
    match Json.member "cancelled" j with Some (Json.Str s) -> s | _ -> ""
  in
  let overshoot_ms = observed_ms -. float_of_int deadline_ms in
  Format.printf
    "serve deadline: %d ms deadline, answered in %.1f ms (overshoot %.1f ms, \
     cancelled=%S)@."
    deadline_ms observed_ms overshoot_ms cancelled;
  if cancelled <> "deadline" || overshoot_ms > overshoot_bound_ms then begin
    Format.eprintf "serve: deadline cancellation out of bounds@.";
    Atomic.set failed true
  end;
  let json =
    Json.to_string
      (Json.Obj
         [ ("host", Ace_harness.Extras.host_json ());
           ("rows", Json.List (List.rev !rows));
           ("deadline",
            Json.Obj
              [ ("deadline_ms", Json.int deadline_ms);
                ("observed_ms", Json.Num observed_ms);
                ("overshoot_ms", Json.Num overshoot_ms);
                ("overshoot_bound_ms", Json.Num overshoot_bound_ms);
                ("cancelled", Json.Str cancelled) ]) ])
  in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "wrote BENCH_serve.json (%d rows)@." (List.length !rows);
  (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
  if Atomic.get failed then begin
    Format.eprintf "serve: bench failed@.";
    exit 1
  end

(* `fuzz [count=N] [seed=N] [schedules=N]`: differential-fuzz throughput —
   run the lib/check oracle over N generated cases and report cases/sec;
   exits 1 on any cross-engine discrepancy, so it doubles as a deep
   correctness sweep. *)
let fuzz_run ~count ~seed ~schedules ~profile_all =
  Format.printf "fuzz: %d cases from seed %d, %d chaos schedules%s@." count
    seed schedules
    (if profile_all then ", profiler on every row" else "");
  let t0 = Unix.gettimeofday () in
  let report =
    Ace_check.Fuzz.run ~count ~seed ~schedules ~profile_all
      ~log:(Format.eprintf "fuzz: %s@.")
      ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%a" Ace_check.Fuzz.pp_report report;
  Format.printf "fuzz: %.1f cases/sec, %.1f engine runs/sec (%.2fs total)@."
    (float_of_int report.Ace_check.Fuzz.r_count /. dt)
    (float_of_int report.Ace_check.Fuzz.r_runs /. dt)
    dt;
  if Ace_check.Fuzz.ok report then exit 0 else exit 1

let () =
  let has a = Array.length Sys.argv > 1 && Array.mem a Sys.argv in
  let keyed key default =
    Array.fold_left
      (fun acc a ->
        match String.split_on_char '=' a with
        | [ k; v ] when k = key -> ( match int_of_string_opt v with
                                     | Some n -> n
                                     | None -> acc)
        | _ -> acc)
      default Sys.argv
  in
  if has "fuzz" then
    fuzz_run ~count:(keyed "count" 200) ~seed:(keyed "seed" 0)
      ~schedules:(keyed "schedules" 2)
      ~profile_all:(keyed "profile_all" 0 <> 0);
  if has "profile" then begin
    profile_run ();
    exit 0
  end;
  if has "seq_core" then begin
    seq_core_run ~record:(has "record") ();
    exit 0
  end;
  if has "alloc" then begin
    alloc_run ~record:(has "record") ();
    exit 0
  end;
  if has "par_and" then begin
    par_and_sweep ();
    exit 0
  end;
  if has "tabling" then begin
    tabling_run ();
    exit 0
  end;
  if has "serve" then begin
    serve_run ~clients:(keyed "clients" 4) ~queries:(keyed "queries" 25);
    exit 0
  end;
  let par_or_only = has "par_or" in
  if not par_or_only then begin
    let tests = paper_tests @ extra_tests @ ablation_tests in
    Format.printf "benchmarking %d targets (wall-clock per regeneration run)@."
      (List.length tests);
    let results = benchmark tests in
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
    List.iter
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Format.printf "%-28s %12.3f ms/run@." name (ns /. 1e6)
        | Some _ | None -> Format.printf "%-28s (no estimate)@." name)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  end;
  par_or_sweep ()
